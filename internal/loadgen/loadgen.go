// Package loadgen generates deterministic open-loop temporal serving
// workloads: seeded arrival processes (steady, diurnal multi-period,
// bursty on/off) over user cohorts with Zipf-skewed graph and kernel
// popularity, emitted as a replayable versioned JSON trace with
// virtual-time arrival stamps.
//
// Determinism contract: Generate is a pure function of its Spec — the same
// spec (including the seed) produces the same Trace, and Marshal produces
// byte-identical JSON, at any GOMAXPROCS (generation is sequential and
// uses a private splitmix64 stream, never math/rand or the clock). Traces
// therefore replay exactly: the figServe experiment and the serving load
// tests drive pmemserved from them, and only the replay's wall-clock
// latencies are nondeterministic.
//
// The trace records VIRTUAL time (microseconds from trace start). A
// replayer maps virtual to real time with whatever speedup it wants; the
// arrival ordering and job mix never change. This sits at the bottom of
// the dependency graph next to internal/gen: no simulator, no server.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
)

// TraceVersion is the serialized trace format version; Parse rejects
// anything else.
const TraceVersion = 1

// Arrival process kinds.
type ArrivalKind string

const (
	// ArrivalSteady is a constant-rate Poisson-like process (exponential
	// inter-arrivals from the seeded stream).
	ArrivalSteady ArrivalKind = "steady"
	// ArrivalDiurnal modulates the base rate with one sinusoid per
	// configured Period (day/week-style multi-period traffic), floored at
	// zero, sampled by thinning.
	ArrivalDiurnal ArrivalKind = "diurnal"
	// ArrivalBursty alternates on/off phases: rate*BurstFactor while on,
	// rate/BurstFactor while off.
	ArrivalBursty ArrivalKind = "bursty"
)

// Period is one diurnal modulation component: the instantaneous rate gains
// Amplitude*sin(2*pi*t/Seconds).
type Period struct {
	Seconds   float64 `json:"seconds"`
	Amplitude float64 `json:"amplitude"`
}

// Cohort is one user population: a share of the offered load submitting
// one job class, with Zipf-skewed popularity over its ranked graphs and
// apps (rank 0 is the most popular; skew 0 means uniform).
type Cohort struct {
	Name   string  `json:"name"`
	Class  string  `json:"class"`
	Weight float64 `json:"weight"` // share of events, relative to other cohorts
	Users  int     `json:"users"`  // distinct user ids in [0, Users)
	// Graphs and Apps are ranked most-popular-first; GraphSkew/AppSkew are
	// the Zipf exponents (P(rank k) proportional to 1/(k+1)^skew).
	Graphs    []string `json:"graphs"`
	GraphSkew float64  `json:"graph_skew,omitempty"`
	Apps      []string `json:"apps"`
	AppSkew   float64  `json:"app_skew,omitempty"`
	Threads   int      `json:"threads,omitempty"`
	// DeadlineMS, when positive, stamps every event of this cohort with a
	// relative deadline (the class SLO) the scheduler may shed against.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Spec configures one trace generation.
type Spec struct {
	Seed     uint64      `json:"seed"`
	Arrival  ArrivalKind `json:"arrival"`
	Rate     float64     `json:"rate"`     // mean events per virtual second
	Duration float64     `json:"duration"` // virtual seconds
	Periods  []Period    `json:"periods,omitempty"`
	// Bursty parameters: OnSeconds at Rate*BurstFactor, then OffSeconds at
	// Rate/BurstFactor, repeating.
	OnSeconds   float64  `json:"on_seconds,omitempty"`
	OffSeconds  float64  `json:"off_seconds,omitempty"`
	BurstFactor float64  `json:"burst_factor,omitempty"`
	Cohorts     []Cohort `json:"cohorts"`
}

// Event is one arrival: a job submission at a virtual time.
type Event struct {
	Seq       int    `json:"seq"`
	ArrivalUS int64  `json:"arrival_us"` // virtual microseconds from trace start
	Cohort    string `json:"cohort"`
	Class     string `json:"class"`
	User      int    `json:"user"`
	Graph     string `json:"graph"`
	App       string `json:"app"`
	Threads   int    `json:"threads,omitempty"`
	// DeadlineMS is the relative deadline (SLO) in milliseconds from
	// submission; 0 means none.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Trace is the replayable workload: the generating spec's identity plus
// the arrival-stamped events, serialized as versioned JSON.
type Trace struct {
	Version int     `json:"version"`
	Spec    Spec    `json:"spec"`
	Events  []Event `json:"events"`
}

// rng is a splitmix64 stream, the same generator idiom internal/gen uses.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp returns a unit-mean exponential variate.
func (r *rng) exp() float64 {
	u := r.float()
	// 1-u is in (0, 1], so the log is finite.
	return -math.Log(1 - u)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// zipf is a precomputed Zipf sampler over n ranks: P(k) ~ 1/(k+1)^skew.
type zipf struct{ cum []float64 }

func newZipf(n int, skew float64) zipf {
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), skew)
		cum[k] = total
	}
	return zipf{cum: cum}
}

func (z zipf) pick(r *rng) int {
	x := r.float() * z.cum[len(z.cum)-1]
	for k, c := range z.cum {
		if x <= c {
			return k
		}
	}
	return len(z.cum) - 1
}

// validate checks the spec before generation.
func (s Spec) validate() error {
	if s.Rate <= 0 {
		return fmt.Errorf("loadgen: rate must be positive (got %v)", s.Rate)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive (got %v)", s.Duration)
	}
	switch s.Arrival {
	case ArrivalSteady:
	case ArrivalDiurnal:
		if len(s.Periods) == 0 {
			return fmt.Errorf("loadgen: diurnal arrivals need at least one period")
		}
		for i, p := range s.Periods {
			if p.Seconds <= 0 || p.Amplitude < 0 {
				return fmt.Errorf("loadgen: period %d invalid (seconds %v, amplitude %v)", i, p.Seconds, p.Amplitude)
			}
		}
	case ArrivalBursty:
		if s.OnSeconds <= 0 || s.OffSeconds <= 0 {
			return fmt.Errorf("loadgen: bursty arrivals need positive on/off phases")
		}
		if s.BurstFactor < 1 {
			return fmt.Errorf("loadgen: burst factor must be >= 1 (got %v)", s.BurstFactor)
		}
	default:
		return fmt.Errorf("loadgen: unknown arrival kind %q", s.Arrival)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("loadgen: at least one cohort required")
	}
	for i, c := range s.Cohorts {
		switch {
		case c.Name == "":
			return fmt.Errorf("loadgen: cohort %d has no name", i)
		case c.Class == "":
			return fmt.Errorf("loadgen: cohort %q has no class", c.Name)
		case c.Weight <= 0:
			return fmt.Errorf("loadgen: cohort %q weight must be positive", c.Name)
		case c.Users <= 0:
			return fmt.Errorf("loadgen: cohort %q needs at least one user", c.Name)
		case len(c.Graphs) == 0 || len(c.Apps) == 0:
			return fmt.Errorf("loadgen: cohort %q needs graphs and apps", c.Name)
		case c.GraphSkew < 0 || c.AppSkew < 0:
			return fmt.Errorf("loadgen: cohort %q skew must be non-negative", c.Name)
		case c.DeadlineMS < 0:
			return fmt.Errorf("loadgen: cohort %q deadline must be non-negative", c.Name)
		}
	}
	return nil
}

// rate returns the instantaneous arrival rate at virtual time t, and the
// process's rate ceiling (for thinning).
func (s Spec) rate(t float64) float64 {
	switch s.Arrival {
	case ArrivalDiurnal:
		r := s.Rate
		for _, p := range s.Periods {
			r += s.Rate * p.Amplitude * math.Sin(2*math.Pi*t/p.Seconds)
		}
		if r < 0 {
			r = 0
		}
		return r
	case ArrivalBursty:
		phase := math.Mod(t, s.OnSeconds+s.OffSeconds)
		if phase < s.OnSeconds {
			return s.Rate * s.BurstFactor
		}
		return s.Rate / s.BurstFactor
	default:
		return s.Rate
	}
}

func (s Spec) rateCeiling() float64 {
	switch s.Arrival {
	case ArrivalDiurnal:
		max := s.Rate
		for _, p := range s.Periods {
			max += s.Rate * p.Amplitude
		}
		return max
	case ArrivalBursty:
		return s.Rate * s.BurstFactor
	default:
		return s.Rate
	}
}

// Generate produces the trace: arrivals by Lewis-Shedler thinning against
// the process's rate ceiling, each event assigned to a cohort by weight
// and to a (user, graph, app) by the cohort's popularity distributions.
// Arrival stamps are strictly increasing (thinning cannot produce ties at
// microsecond resolution without astronomically high rates; equal stamps
// are bumped by 1us to keep the ordering total).
func (s Spec) Generate() (*Trace, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	r := &rng{state: s.Seed}
	// Cohort choice by cumulative weight; per-cohort Zipf samplers.
	cumW := make([]float64, len(s.Cohorts))
	totalW := 0.0
	graphZ := make([]zipf, len(s.Cohorts))
	appZ := make([]zipf, len(s.Cohorts))
	for i, c := range s.Cohorts {
		totalW += c.Weight
		cumW[i] = totalW
		graphZ[i] = newZipf(len(c.Graphs), c.GraphSkew)
		appZ[i] = newZipf(len(c.Apps), c.AppSkew)
	}
	ceiling := s.rateCeiling()
	tr := &Trace{Version: TraceVersion, Spec: s}
	t := 0.0
	lastUS := int64(-1)
	for {
		t += r.exp() / ceiling
		if t > s.Duration {
			break
		}
		if r.float()*ceiling > s.rate(t) {
			continue // thinned: instantaneous rate is below the ceiling
		}
		us := int64(t * 1e6)
		if us <= lastUS {
			us = lastUS + 1
		}
		lastUS = us
		ci := len(s.Cohorts) - 1
		x := r.float() * totalW
		for i, c := range cumW {
			if x <= c {
				ci = i
				break
			}
		}
		c := s.Cohorts[ci]
		tr.Events = append(tr.Events, Event{
			Seq:        len(tr.Events),
			ArrivalUS:  us,
			Cohort:     c.Name,
			Class:      c.Class,
			User:       r.intn(c.Users),
			Graph:      c.Graphs[graphZ[ci].pick(r)],
			App:        c.Apps[appZ[ci].pick(r)],
			Threads:    c.Threads,
			DeadlineMS: c.DeadlineMS,
		})
	}
	return tr, nil
}

// Marshal serializes the trace as indented JSON (deterministic: the
// encoder walks struct fields in declaration order, and the trace holds no
// maps). A trailing newline makes the bytes file- and diff-friendly.
func (t *Trace) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: marshaling trace: %w", err)
	}
	return append(data, '\n'), nil
}

// Parse deserializes a trace, rejecting unknown versions.
func Parse(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("loadgen: parsing trace: %w", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("loadgen: unsupported trace version %d (want %d)", t.Version, TraceVersion)
	}
	return &t, nil
}
