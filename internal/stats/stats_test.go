package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	if g := Geomean([]float64{-1, 0}); g != 0 {
		t.Errorf("geomean of non-positives = %v, want 0", g)
	}
	// Mixed: non-positives ignored.
	if g := Geomean([]float64{4, -5, 0}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(4,-5,0) = %v, want 4", g)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	// Property: geomean(kx) = k * geomean(x) for positive k.
	check := func(a, b uint8, k uint8) bool {
		x := []float64{float64(a) + 1, float64(b) + 1}
		kk := float64(k)/16 + 0.5
		lhs := Geomean([]float64{x[0] * kk, x[1] * kk})
		rhs := kk * Geomean(x)
		return math.Abs(lhs-rhs) < 1e-9*rhs
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 5); s != 2 {
		t.Errorf("speedup = %v", s)
	}
	if s := Speedup(10, 0); s != 0 {
		t.Errorf("speedup by zero = %v", s)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:        "512 B",
		2048:       "2.0 KiB",
		3 << 20:    "3.0 MiB",
		5 << 30:    "5.0 GiB",
		7 << 40:    "7.0 TiB",
		1536 << 20: "1.5 GiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(10, 5); got != "+50%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(10, 15); got != "-50%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0, 5); got != "n/a" {
		t.Errorf("Pct from zero = %q", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(0); got != "n/a" {
		t.Errorf("Ratio(0) = %q", got)
	}
	if got := Ratio(890); !strings.HasPrefix(got, "890") {
		t.Errorf("Ratio(890) = %q", got)
	}
	if got := Ratio(12.34); got != "12.3x" {
		t.Errorf("Ratio(12.34) = %q", got)
	}
	if got := Ratio(1.666); got != "1.67x" {
		t.Errorf("Ratio(1.666) = %q", got)
	}
}
