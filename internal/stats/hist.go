package stats

import (
	"math/bits"
	"sort"
)

// Histogram is a log-linear latency histogram: values (seconds) land in
// power-of-two microsecond buckets, so the whole nanosecond-to-hours range
// fits in 64 counters with bounded (2x, reduced to ~25% by in-bucket
// interpolation) relative quantile error. It is the serving layer's
// queue-wait and service-time accumulator: Observe is O(1) with no
// allocation, and the zero value is ready to use. Not goroutine-safe —
// callers (the scheduler) observe under their own lock.
type Histogram struct {
	counts [65]uint64
	count  uint64
	sum    float64
	max    float64
}

// bucket maps a duration in seconds to its power-of-two microsecond bucket.
func bucket(seconds float64) int {
	us := int64(seconds * 1e6)
	if us < 0 {
		us = 0
	}
	return bits.Len64(uint64(us)) // 0 for <1us, else floor(log2(us))+1
}

// Observe folds one duration (in seconds; negatives clamp to 0) into the
// histogram.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	h.counts[bucket(seconds)]++
	h.count++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1) in seconds,
// interpolating linearly inside the containing bucket. Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := 0.0
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := bucketBounds(b)
			if hi > h.max {
				hi = h.max // the top occupied bucket cannot exceed the max
			}
			if hi < lo {
				return lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.max
}

// bucketBounds returns a bucket's [lo, hi) value range in seconds.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1e-6
	}
	return float64(int64(1)<<(b-1)) / 1e6, float64(int64(1)<<b) / 1e6
}

// Summary is the wire-format snapshot of a Histogram: the count plus the
// mean/median/tail quantiles the serving stats endpoint reports. All times
// are host wall-clock seconds.
type Summary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	P999Seconds float64 `json:"p999_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// Summarize snapshots the histogram.
func (h *Histogram) Summarize() Summary {
	s := Summary{Count: h.count, MaxSeconds: h.max}
	if h.count > 0 {
		s.MeanSeconds = h.sum / float64(h.count)
		s.P50Seconds = h.Quantile(0.50)
		s.P99Seconds = h.Quantile(0.99)
		s.P999Seconds = h.Quantile(0.999)
	}
	return s
}

// Quantile returns the q-quantile (0 < q <= 1) of samples by the
// nearest-rank rule, sorting a copy; unlike Histogram.Quantile this is
// exact, which is what the figServe tail-latency records want. Returns 0
// for an empty slice.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
