package stats

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	s := h.Summarize()
	if s.Count != 0 || s.P99Seconds != 0 || s.MaxSeconds != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// TestHistogramQuantileBoundedError checks the log-linear design contract:
// every quantile estimate lands within the containing power-of-two bucket,
// so it is off from the exact sample quantile by at most 2x (and the max
// is exact).
func TestHistogramQuantileBoundedError(t *testing.T) {
	var h Histogram
	var samples []float64
	// A skewed latency-like distribution spanning five decades.
	v := 50e-6
	for i := 0; i < 5000; i++ {
		v = math.Mod(v*1.618+13e-6, 0.9) + 10e-6
		h.Observe(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Quantile(samples, q)
		est := h.Quantile(q)
		if est < exact/2 || est > exact*2 {
			t.Errorf("q=%v: histogram estimate %.6f outside 2x of exact %.6f", q, est, exact)
		}
	}
	s := h.Summarize()
	if s.Count != 5000 {
		t.Errorf("count = %d", s.Count)
	}
	max := Quantile(samples, 1)
	if s.MaxSeconds != max {
		t.Errorf("max = %v, want %v", s.MaxSeconds, max)
	}
	if s.P50Seconds > s.P99Seconds || s.P99Seconds > s.MaxSeconds {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-3)
	if h.max != 0 || h.count != 1 {
		t.Errorf("negative observation: max=%v count=%d", h.max, h.count)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.0, 1}, {0.5, 3}, {1.0, 5}, {0.99, 5},
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// The input slice must not be reordered.
	if samples[0] != 5 || samples[4] != 3 {
		t.Errorf("Quantile mutated its input: %v", samples)
	}
}
