// Package stats provides the small numeric helpers the experiment harness
// uses to summarize results the way the paper does (geomean speedups,
// ratios, human-readable sizes). Pure host-side arithmetic at the bottom
// of the dependency graph: nothing here is charged to the simulator, and
// every function is a deterministic pure function of its inputs (Geomean
// folds in slice order, so even float summaries are reproducible).
package stats

import (
	"fmt"
	"math"
)

// Geomean returns the geometric mean of xs, ignoring non-positive values
// (which cannot be folded into a geometric mean). It returns 0 for an
// empty input.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Speedup returns base/other, the paper's convention for "speedup of other
// over base" tables (e.g. DM/OB in Table 4). Returns 0 if other is 0.
func Speedup(base, other float64) float64 {
	if other == 0 {
		return 0
	}
	return base / other
}

// HumanBytes renders a byte count with binary units.
func HumanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Pct renders a ratio as a signed percentage change.
func Pct(from, to float64) string {
	if from == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (from-to)/from*100)
}

// Ratio formats a ratio like the paper's "NNx" speedup cells.
func Ratio(x float64) string {
	switch {
	case x == 0:
		return "n/a"
	case x >= 100:
		return fmt.Sprintf("%.0fx", x)
	case x >= 10:
		return fmt.Sprintf("%.1fx", x)
	default:
		return fmt.Sprintf("%.2fx", x)
	}
}
