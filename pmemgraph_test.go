package pmemgraph

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	g, err := GenerateInput("kron30", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(OptanePMM, ScaleSmall)
	res, err := sys.Run(g, "bfs", 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.App != "bfs" {
		t.Errorf("bad result: %+v", res)
	}
}

func TestFacadeRunAs(t *testing.T) {
	g, err := GenerateInput("kron30", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(DDR4DRAM, ScaleSmall)
	if _, err := sys.RunAs("GBBS", g, "cc", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunAs("NoSuchFramework", g, "cc", 8); err == nil {
		t.Error("unknown framework accepted")
	}
}

func TestFacadeInventory(t *testing.T) {
	if len(Apps()) != 7 {
		t.Errorf("apps = %v", Apps())
	}
	if len(InputNames()) != 6 {
		t.Errorf("inputs = %v", InputNames())
	}
	if len(Experiments()) != 19 {
		t.Errorf("experiments = %v", Experiments())
	}
	if _, err := GenerateInput("nope", ScaleSmall); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestFacadeMachineKinds(t *testing.T) {
	g, err := GenerateInput("kron30", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []MachineKind{OptanePMM, DDR4DRAM, Entropy} {
		sys := NewSystem(kind, ScaleSmall)
		if _, err := sys.Run(g, "bfs", 8); err != nil {
			t.Errorf("kind %d: %v", kind, err)
		}
	}
}
