package pmemgraph

// One benchmark per table and figure in the paper's evaluation. Each
// regenerates the experiment through the harness at ScaleSmall with
// trimmed sweeps so `go test -bench=.` completes in minutes; run
// `cmd/pmembench -scale full` for the full-scale harness and see
// EXPERIMENTS.md for recorded outputs.

import (
	"io"
	"os"
	"testing"

	"pmemgraph/internal/bench"
	"pmemgraph/internal/gen"
)

// benchSink accumulates machine-readable results across every benchmark in
// the run when BENCH_JSON names an output file; each experiment rewrites
// the file so a partial run still leaves a valid snapshot. Example:
//
//	BENCH_JSON=BENCH_figures.json go test -bench=. -benchtime 1x
var benchSink *bench.Sink

func init() {
	if os.Getenv("BENCH_JSON") != "" {
		benchSink = &bench.Sink{}
	}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	opts := bench.Options{Scale: gen.ScaleSmall, Quick: true, Out: io.Discard, Sink: benchSink}
	if testing.Verbose() {
		// go test -bench -v prints the regenerated tables.
		opts.Out = testWriter{b}
	}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			// Record each experiment's rows once, not once per b.N
			// iteration.
			opts.Sink = nil
		}
		if err := bench.Run(name, opts); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
	if benchSink != nil {
		if err := benchSink.WriteJSON(os.Getenv("BENCH_JSON")); err != nil {
			b.Fatalf("writing %s: %v", os.Getenv("BENCH_JSON"), err)
		}
	}
}

type testWriter struct{ b *testing.B }

func (w testWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

func BenchmarkTable1Bandwidth(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2Latency(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkTable3Inputs(b *testing.B)         { runExperiment(b, "table3") }
func BenchmarkFigure4aNUMALocal(b *testing.B)    { runExperiment(b, "fig4a") }
func BenchmarkFigure4bPolicies(b *testing.B)     { runExperiment(b, "fig4b") }
func BenchmarkFigure5PageMigration(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFigure6KernelUser(b *testing.B)    { runExperiment(b, "fig6") }
func BenchmarkFigure7Algorithms(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFigure8Entropy(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkFigure9Frameworks(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFigure10Scaling(b *testing.B)      { runExperiment(b, "fig10") }

func BenchmarkTable4OptaneVsCluster(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkFigure11Configs(b *testing.B)       { runExperiment(b, "fig11") }
func BenchmarkTable5OutOfCore(b *testing.B)       { runExperiment(b, "table5") }

// Ablation benches beyond the paper's figures (design choices DESIGN.md
// calls out): page-size and NUMA-policy sensitivity of a single kernel.

func BenchmarkAblationPageSize(b *testing.B) {
	g, err := GenerateInput("clueweb12", ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(OptanePMM, ScaleSmall)
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(g, "bfs", 96); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFrameworks(b *testing.B) {
	g, err := GenerateInput("kron30", ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(OptanePMM, ScaleSmall)
	for _, fw := range []string{"Galois", "GBBS"} {
		b.Run(fw, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.RunAs(fw, g, "bfs", 96); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
