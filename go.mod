module pmemgraph

go 1.24
