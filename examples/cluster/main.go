// Cluster: reproduce the §6.3 question on one input — is a single Optane
// PMM machine competitive with a distributed cluster? Runs bfs on the
// simulated Optane box (asynchronous sparse algorithms) and on simulated
// Stampede2 clusters of growing size (BSP vertex programs).
package main

import (
	"fmt"
	"log"

	"pmemgraph"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/graph"
	"pmemgraph/internal/shard"
)

func main() {
	g, err := pmemgraph.GenerateInput("clueweb12", pmemgraph.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := g.MaxOutDegreeNode()

	sys := pmemgraph.NewSystem(pmemgraph.OptanePMM, pmemgraph.ScaleSmall)
	ob, err := sys.Run(g, "bfs", 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Optane PMM, 96 threads, sparse async bfs: %.4f s\n\n", ob.Seconds)

	fmt.Println("D-Galois BSP vertex-program bfs on Stampede2:")
	for _, hosts := range []int{2, 5, 20, 64} {
		part, err := graph.NewPartition(g, hosts)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := shard.New(part, shard.ClusterConfig(hosts, gen.ScaleSmall.Div()))
		if err != nil {
			log.Fatal(err)
		}
		res := engine.BFS(src)
		fmt.Printf("  %3d hosts (%4d cores): %.4f s  (%5.1f%% communication, %s sent)\n",
			hosts, hosts*48, res.Seconds,
			100*engine.CommSeconds()/res.Seconds, humanBytes(engine.BytesSent()))
		engine.Close()
	}
	fmt.Println("\nThe cluster gains compute with hosts but pays per-round")
	fmt.Println("synchronization on every one of the web crawl's hundreds of")
	fmt.Println("rounds — the effect behind the paper's Table 4.")
}

func humanBytes(b int64) string {
	switch {
	case b > 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b > 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
