// Outofcore: reproduce the §6.4 comparison on one input — GridGraph
// streaming from Optane app-direct storage versus the shared-memory
// engine using Optane as main memory.
package main

import (
	"fmt"
	"log"

	"pmemgraph"
	"pmemgraph/internal/gen"
	"pmemgraph/internal/oocsim"
)

func main() {
	g, err := pmemgraph.GenerateInput("clueweb12", pmemgraph.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := g.MaxOutDegreeNode()

	cfg := oocsim.DefaultConfig(gen.ScaleSmall.Div())
	cfg.GridP = 128
	engine, err := oocsim.NewEngine(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ad := engine.BFS(src)
	fmt.Printf("GridGraph (app-direct): bfs %8.4f s over %d full-grid sweeps (%.1f MB streamed per sweep)\n",
		ad.Seconds, ad.Rounds, float64(engine.EdgeBytesPerSweep())/1e6)

	sys := pmemgraph.NewSystem(pmemgraph.OptanePMM, pmemgraph.ScaleSmall)
	mm, err := sys.Run(g, "bfs", 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Galois (memory mode):   bfs %8.4f s\n", mm.Seconds)
	fmt.Printf("memory mode is %.0fx faster (paper: 890x at full scale)\n", ad.Seconds/mm.Seconds)
}
