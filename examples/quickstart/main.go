// Quickstart: generate a scaled paper input, run bfs on the simulated
// Optane PMM machine with the paper's recommended configuration, and print
// the simulated time and hardware counters.
package main

import (
	"fmt"
	"log"

	"pmemgraph"
)

func main() {
	g, err := pmemgraph.GenerateInput("kron30", pmemgraph.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kron30 (scaled): %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	sys := pmemgraph.NewSystem(pmemgraph.OptanePMM, pmemgraph.ScaleSmall)
	for _, app := range []string{"bfs", "cc", "pr"} {
		res, err := sys.Run(g, app, 96)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s  %8.4f simulated s  %4d rounds  near-mem hit %.1f%%  TLB miss %.2f%%\n",
			app, res.Seconds, res.Rounds,
			100*res.Counters.NearMemHitRate(), 100*res.Counters.TLBMissRate())
	}
}
