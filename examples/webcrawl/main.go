// Webcrawl: the paper's §5 motivation end to end — on a high-diameter
// web crawl, compare the dense-worklist vertex program against the
// sparse-worklist and asynchronous algorithms, across frameworks.
package main

import (
	"fmt"
	"log"

	"pmemgraph"
)

func main() {
	g, err := pmemgraph.GenerateInput("clueweb12", pmemgraph.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clueweb12 (scaled): %d nodes, %d edges, est. diameter %d\n",
		g.NumNodes(), g.NumEdges(), g.EstimateDiameter())

	sys := pmemgraph.NewSystem(pmemgraph.OptanePMM, pmemgraph.ScaleSmall)
	fmt.Println("\nbfs across framework profiles (96 threads):")
	for _, fw := range []string{"GraphIt", "GAP", "GBBS", "Galois"} {
		res, err := sys.RunAs(fw, g, "bfs", 96)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.4f s  (%s, %d rounds)\n", fw, res.Seconds, res.Algorithm, res.Rounds)
	}

	fmt.Println("\nsssp across framework profiles (96 threads):")
	for _, fw := range []string{"GraphIt", "Galois"} {
		res, err := sys.RunAs(fw, g, "sssp", 96)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.4f s  (%s)\n", fw, res.Seconds, res.Algorithm)
	}
}
